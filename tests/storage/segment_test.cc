// The on-disk segment store: snapshot round trips (byte-identical
// query results at every thread count), open-is-lazy observables,
// copy-on-write promotion, the frozen dictionary, and a deliberate
// corruption battery — a damaged snapshot must always produce a clear
// diagnostic, never a crash or a silently wrong answer.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/eval.h"
#include "core/plan/plan.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "graph/generators.h"
#include "loader/bulk_load.h"
#include "storage/segment/segment_format.h"
#include "storage/segment/segment_io.h"
#include "storage/segment/segment_source.h"
#include "storage/segment/store_snapshot.h"
#include "storage/triple_store.h"
#include "util/rng.h"

namespace trial {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<uint8_t> bytes;
  if (f != nullptr) {
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

// Re-seals the header checksum after a test mutated a header field, so
// the *intended* validation step fires instead of the checksum one.
void FixHeaderChecksum(std::vector<uint8_t>* bytes) {
  SegmentFileHeader h;
  std::memcpy(&h, bytes->data(), sizeof(h));
  h.header_checksum =
      Checksum64(&h, offsetof(SegmentFileHeader, header_checksum));
  std::memcpy(bytes->data(), &h, sizeof(h));
}

// A store exercising every rho value kind, two relations, and names
// of assorted lengths (including the empty-ish short ones).
TripleStore SmallStore() {
  TripleStore store;
  store.Add("E", "a", "p", "b");
  store.Add("E", "b", "p", "c");
  store.Add("E", "a", "q", "c");
  store.Add("F", "c", "likes", "http://example.org/some/long/name#x");
  store.SetValue(store.InternObject("a"), DataValue::Int(-42));
  store.SetValue(store.InternObject("b"), DataValue::Str("hello"));
  store.SetValue(store.InternObject("c"),
                 DataValue::Tuple({DataValue::Int(7), DataValue::Null(),
                                   DataValue::Str("t")}));
  return store;
}

TripleStore ZipfStore(uint64_t seed) {
  RandomStoreOptions opts;
  opts.num_objects = 12;
  opts.num_triples = 60;
  opts.num_data_values = 3;
  opts.zipf_p = 1.2;
  opts.zipf_o = 0.8;
  opts.seed = seed;
  return RandomTripleStore(opts);
}

// Same generator as the plan-layer equivalence property test.
ExprPtr RandomExpr(Rng* rng, int depth, bool allow_star) {
  auto rand_pos = [&] { return static_cast<Pos>(rng->Below(6)); };
  auto rand_spec = [&] {
    JoinSpec spec;
    spec.out = {rand_pos(), rand_pos(), rand_pos()};
    for (size_t i = 0, n = rng->Below(3); i < n; ++i) {
      spec.cond.theta.push_back(ObjConstraint{
          ObjTerm::P(rand_pos()), ObjTerm::P(rand_pos()), rng->Chance(3, 4)});
    }
    if (rng->Chance(1, 3)) {
      spec.cond.eta.push_back(DataConstraint{
          DataTerm::P(rand_pos()), DataTerm::P(rand_pos()),
          rng->Chance(2, 3)});
    }
    return spec;
  };
  if (depth <= 0) return Expr::Rel("E");
  switch (rng->Below(allow_star ? 7 : 5)) {
    case 0:
      return Expr::Rel("E");
    case 1: {
      CondSet cond;
      cond.theta.push_back(ObjConstraint{
          ObjTerm::P(static_cast<Pos>(rng->Below(3))),
          ObjTerm::C(static_cast<ObjId>(rng->Below(8))), rng->Chance(2, 3)});
      return Expr::Select(RandomExpr(rng, depth - 1, allow_star), cond);
    }
    case 2:
      return Expr::Union(RandomExpr(rng, depth - 1, allow_star),
                         RandomExpr(rng, depth - 1, allow_star));
    case 3:
      return Expr::Diff(RandomExpr(rng, depth - 1, allow_star),
                        RandomExpr(rng, depth - 1, allow_star));
    case 4:
      return Expr::Join(RandomExpr(rng, depth - 1, allow_star),
                        RandomExpr(rng, depth - 1, allow_star), rand_spec());
    case 5:
      return Expr::StarRight(RandomExpr(rng, depth - 1, false), rand_spec());
    default:
      return Expr::StarLeft(RandomExpr(rng, depth - 1, false), rand_spec());
  }
}

// ---- round trips -------------------------------------------------------

TEST(SnapshotRoundTrip, SmallStoreAllValueKinds) {
  TripleStore store = SmallStore();
  std::string path = TempPath("seg_small.trial");
  SaveSnapshotStats save_stats;
  ASSERT_TRUE(SaveStoreSnapshot(store, path, &save_stats).ok());
  EXPECT_GT(save_stats.bytes, 0u);

  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  // Ids are preserved exactly (the dictionary is written in id order),
  // so id-level comparisons are valid, not just name-level ones.
  ASSERT_EQ(opened->NumObjects(), store.NumObjects());
  ASSERT_EQ(opened->NumRelations(), store.NumRelations());
  for (ObjId id = 0; id < store.NumObjects(); ++id) {
    EXPECT_EQ(opened->ObjectName(id), store.ObjectName(id));
    EXPECT_EQ(opened->Value(id), store.Value(id));
  }
  for (RelId r = 0; r < store.NumRelations(); ++r) {
    EXPECT_EQ(opened->RelationName(r), store.RelationName(r));
    EXPECT_EQ(opened->Relation(r), store.Relation(r));
  }
  std::string diff;
  EXPECT_TRUE(StoresEquivalent(store, *opened, &diff)) << diff;
}

TEST(SnapshotRoundTrip, EmptyStoreAndEmptyRelation) {
  TripleStore empty;
  std::string path = TempPath("seg_empty.trial");
  ASSERT_TRUE(SaveStoreSnapshot(empty, path).ok());
  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->NumObjects(), 0u);
  EXPECT_EQ(opened->NumRelations(), 0u);

  TripleStore store;
  store.AddRelation("E");  // a relation with no triples
  store.InternObject("lonely");
  std::string path2 = TempPath("seg_empty_rel.trial");
  ASSERT_TRUE(SaveStoreSnapshot(store, path2).ok());
  auto opened2 = OpenStoreSnapshot(path2);
  ASSERT_TRUE(opened2.ok()) << opened2.status().ToString();
  EXPECT_EQ(opened2->NumRelations(), 1u);
  EXPECT_TRUE(opened2->Relation(0).empty());
  EXPECT_EQ(opened2->ObjectName(0), "lonely");
}

TEST(SnapshotRoundTrip, StatsPersistExactly) {
  TripleStore store = ZipfStore(7);
  const TripleSetStats& live = store.RelationStats(0);
  std::string path = TempPath("seg_stats.trial");
  ASSERT_TRUE(SaveStoreSnapshot(store, path).ok());
  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  // Exact stats are available immediately — no Stats() call, no decode.
  const TripleSetStats* cached = opened->Relation(0).CachedStats();
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached->num_triples, live.num_triples);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(cached->distinct[c], live.distinct[c]);
  }
  EXPECT_EQ(SnapshotDecodeCount(*opened), 0u);
}

TEST(SnapshotRoundTrip, AggregatedProjectionsPersistExactly) {
  TripleStore store = ZipfStore(21);
  const TripleSetStats& live = store.RelationStats(0);
  ASSERT_TRUE(live.HasAgg(0));
  std::string path = TempPath("seg_agg.trial");
  ASSERT_TRUE(SaveStoreSnapshot(store, path).ok());
  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const TripleSetStats* cached = opened->Relation(0).CachedStats();
  ASSERT_NE(cached, nullptr);
  for (int c = 0; c < 3; ++c) {
    ASSERT_EQ(cached->topk[c].size(), live.topk[c].size()) << c;
    for (size_t i = 0; i < live.topk[c].size(); ++i) {
      EXPECT_EQ(cached->topk[c][i], live.topk[c][i]) << c << "/" << i;
    }
  }
  // Planning an equi-join consumes the persisted projections — same
  // estimate as against the live store — without decoding any pages.
  ExprPtr e = Expr::Join(Expr::Rel("E"), Expr::Rel("E"),
                         Spec(Pos::P1, Pos::P3, Pos::P3p,
                              {Eq(Pos::P2, Pos::P2p)}));
  plan::PlanPtr live_plan = plan::PlanExpr(e, store);
  plan::PlanPtr snap_plan = plan::PlanExpr(e, *opened);
  EXPECT_DOUBLE_EQ(snap_plan->est_rows, live_plan->est_rows);
  EXPECT_EQ(SnapshotDecodeCount(*opened), 0u) << "planning decoded triples";
}

TEST(SnapshotRoundTrip, PreAggSnapshotsFallBackToHeuristics) {
  // A snapshot written without the aggregated-stats section (the
  // pre-projection layout) must open and answer queries exactly; the
  // planner just loses the top-k refinement and falls back to the
  // independence estimate.
  TripleStore store = ZipfStore(23);
  store.RelationStats(0);
  std::string path = TempPath("seg_preagg.trial");
  SaveSnapshotOptions old_layout;
  old_layout.write_aggregated_stats = false;
  ASSERT_TRUE(SaveStoreSnapshot(store, path, nullptr, old_layout).ok());
  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const TripleSetStats* cached = opened->Relation(0).CachedStats();
  ASSERT_NE(cached, nullptr);  // scalar stats still persist
  EXPECT_EQ(cached->num_triples, store.RelationStats(0).num_triples);
  for (int c = 0; c < 3; ++c) EXPECT_FALSE(cached->HasAgg(c));
  // Planning still works (heuristic estimates, no decode)...
  ExprPtr e = Expr::Join(Expr::Rel("E"), Expr::Rel("E"),
                         Spec(Pos::P1, Pos::P3, Pos::P3p,
                              {Eq(Pos::P2, Pos::P2p)}));
  plan::PlanPtr p = plan::PlanExpr(e, *opened);
  EXPECT_GT(p->est_rows, 0);
  EXPECT_EQ(SnapshotDecodeCount(*opened), 0u);
  // ...and execution answers identically to the in-memory store.
  auto want = plan::ExecutePlan(*plan::PlanExpr(e, store), store);
  auto got = plan::ExecutePlan(*p, *opened);
  ASSERT_TRUE(want.ok() && got.ok());
  EXPECT_EQ(*want, *got);
}

TEST(SnapshotRoundTrip, ResaveReopenedStore) {
  TripleStore store = ZipfStore(13);
  std::string p1 = TempPath("seg_resave1.trial");
  std::string p2 = TempPath("seg_resave2.trial");
  ASSERT_TRUE(SaveStoreSnapshot(store, p1).ok());
  auto first = OpenStoreSnapshot(p1);
  ASSERT_TRUE(first.ok());
  // Saving a snapshot-backed store decodes through the lazy sources.
  ASSERT_TRUE(SaveStoreSnapshot(*first, p2).ok());
  auto second = OpenStoreSnapshot(p2);
  ASSERT_TRUE(second.ok());
  std::string diff;
  EXPECT_TRUE(StoresEquivalent(store, *second, &diff)) << diff;
}

TEST(SnapshotLoader, SinkWritesSnapshot) {
  std::string nt =
      "<http://x/a> <http://x/p> <http://x/b> .\n"
      "<http://x/b> <http://x/p> <http://x/c> .\n"
      "<http://x/a> <http://x/q> <http://x/c> .\n";
  BulkLoadOptions opts;
  opts.num_threads = 2;
  opts.snapshot_path = TempPath("seg_sink.trial");
  BulkLoadStats stats;
  auto loaded = BulkLoadNTriples(nt, opts, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(stats.snapshot_bytes, 0u);
  auto opened = OpenStoreSnapshot(opts.snapshot_path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::string diff;
  EXPECT_TRUE(StoresEquivalent(*loaded, *opened, &diff)) << diff;
}

// ---- open-is-lazy + copy-on-write --------------------------------------

TEST(SnapshotOpen, OpenIsLazyUntilFirstScan) {
  TripleStore store = ZipfStore(3);
  std::string path = TempPath("seg_lazy.trial");
  ASSERT_TRUE(SaveStoreSnapshot(store, path).ok());
  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok());

  // Everything the planner and EXPLAIN need is metadata: counts,
  // stats, lowering a join — none of it may touch triple pages.
  EXPECT_EQ(SnapshotDecodeCount(*opened), 0u);
  EXPECT_EQ(opened->Relation(0).size(), store.Relation(0).size());
  EXPECT_EQ(opened->TotalTriples(), store.TotalTriples());
  ASSERT_NE(opened->Relation(0).CachedStats(), nullptr);
  ExprPtr e = Expr::Join(Expr::Rel("E"), Expr::Rel("E"),
                         Spec(Pos::P1, Pos::P2, Pos::P3p,
                              {Eq(Pos::P3, Pos::P1p)}));
  plan::PlanPtr p = plan::PlanExpr(e, *opened);
  EXPECT_GT(p->est_rows, 0);
  EXPECT_EQ(SnapshotDecodeCount(*opened), 0u) << "planning decoded triples";
  EXPECT_FALSE(opened->Relation(0).IndexReady(IndexOrder::kSPO));

  // The first execution decodes — and only then.
  auto r = plan::ExecutePlan(*p, *opened);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(SnapshotDecodeCount(*opened), 0u);
  EXPECT_TRUE(opened->Relation(0).IndexReady(IndexOrder::kSPO));
}

TEST(SnapshotOpen, CopyOnWritePromotion) {
  TripleStore store = SmallStore();
  std::string path = TempPath("seg_cow.trial");
  ASSERT_TRUE(SaveStoreSnapshot(store, path).ok());
  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok());

  TripleSet copy = opened->Relation(0);
  EXPECT_TRUE(copy.snapshot_backed());
  size_t before = copy.size();
  copy.Insert(0, 0, 0);  // "a a a" — not in SmallStore
  EXPECT_EQ(copy.size(), before + 1);  // triggers promotion
  EXPECT_FALSE(copy.snapshot_backed());
  EXPECT_TRUE(copy.SnapshotHealth().ok());
  EXPECT_TRUE(copy.Contains(Triple{0, 0, 0}));
  // The store's relation still reads through the snapshot, unchanged.
  EXPECT_TRUE(opened->Relation(0).snapshot_backed());
  EXPECT_EQ(opened->Relation(0).size(), before);
  EXPECT_EQ(opened->Relation(0), store.Relation(0));
}

TEST(SnapshotOpen, MutationThenQueryStillHealthy) {
  TripleStore store = SmallStore();
  std::string path = TempPath("seg_mut.trial");
  ASSERT_TRUE(SaveStoreSnapshot(store, path).ok());
  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok());
  opened->MutableRelation(0).Insert(0, 0, 0);
  EXPECT_TRUE(opened->SnapshotStatus().ok());
  auto r = MakeSmartEvaluator()->Eval(Expr::Rel("E"), *opened);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), store.Relation(0).size() + 1);
}

TEST(SnapshotOpen, InternAfterOpen) {
  TripleStore store = SmallStore();
  std::string path = TempPath("seg_intern.trial");
  ASSERT_TRUE(SaveStoreSnapshot(store, path).ok());
  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok());

  // Lookups against the frozen block (the lazy index build).
  EXPECT_EQ(opened->FindObject("a"), store.FindObject("a"));
  EXPECT_EQ(opened->FindObject("never-seen"), kInvalidIntern);
  // Interning an existing name is a no-op; a new name extends past the
  // frozen block.
  size_t frozen = opened->NumObjects();
  EXPECT_EQ(opened->InternObject("a"), store.FindObject("a"));
  ObjId fresh = opened->InternObject("brand-new");
  EXPECT_EQ(static_cast<size_t>(fresh), frozen);
  EXPECT_EQ(opened->ObjectName(fresh), "brand-new");
  EXPECT_TRUE(opened->Value(fresh).is_null());
}

// ---- byte-identical queries at 1/2/4 threads ---------------------------

TEST(SnapshotProperty, ZipfRoundTripQueriesByteIdentical) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    TripleStore store = ZipfStore(seed * 31 + 2);
    std::string path = TempPath("seg_prop.trial");
    ASSERT_TRUE(SaveStoreSnapshot(store, path).ok());
    auto opened = OpenStoreSnapshot(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();

    Rng rng(seed * 977 + 5);
    auto serial = MakeSmartEvaluator();
    for (int i = 0; i < 6; ++i) {
      ExprPtr e = RandomExpr(&rng, 3, /*allow_star=*/true);
      auto want = serial->Eval(e, store);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
        ExecLimits limits;
        limits.exec.num_threads = threads;
        limits.exec.min_parallel_items = 1;
        plan::PlanPtr p = plan::PlanExpr(e, *opened);
        auto got = plan::ExecutePlan(*p, *opened, limits);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(*want, *got)
            << threads << " threads on " << e->ToString();
      }
    }
  }
}

TEST(SnapshotProperty, DatalogOnSnapshotMatchesInMemory) {
  TripleStore store = ZipfStore(21);
  std::string path = TempPath("seg_datalog.trial");
  ASSERT_TRUE(SaveStoreSnapshot(store, path).ok());
  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok());

  auto program = datalog::ParseProgram(
      "reach(X, P, Y) :- E(X, P, Y).\n"
      "reach(X, P, Z) :- reach(X, P, Y), E(Y, Q, Z).\n"
      "ans(X, P, Z) :- reach(X, P, Z).");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto want = datalog::EvalProgram(*program, store);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    datalog::DatalogOptions opts;
    opts.exec.num_threads = threads;
    opts.exec.min_parallel_items = 1;
    auto got = datalog::EvalProgram(*program, *opened, "ans", opts);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*want, *got) << threads << " threads";
  }
}

// ---- the corruption battery --------------------------------------------

// Every damaged file must produce a Status with a diagnostic — never a
// crash, never an OK open followed by silently wrong query results.

TEST(SnapshotCorruption, RejectsTruncatedFile) {
  std::string path = TempPath("seg_trunc.trial");
  ASSERT_TRUE(SaveStoreSnapshot(SmallStore(), path).ok());
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  bytes.resize(bytes.size() - 7);
  WriteFileBytes(path, bytes);
  auto r = OpenStoreSnapshot(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("truncated"), std::string::npos)
      << r.status().ToString();
}

TEST(SnapshotCorruption, RejectsBadMagicAndGarbage) {
  std::string path = TempPath("seg_magic.trial");
  ASSERT_TRUE(SaveStoreSnapshot(SmallStore(), path).ok());
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  bytes[0] ^= 0xff;
  WriteFileBytes(path, bytes);
  auto r = OpenStoreSnapshot(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("not a trial snapshot"),
            std::string::npos);

  // Arbitrary garbage, shorter than a header.
  std::string garbage = TempPath("seg_garbage.trial");
  WriteFileBytes(garbage, std::vector<uint8_t>(23, 0x5a));
  auto g = OpenStoreSnapshot(garbage);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().ToString().find("not a trial snapshot"),
            std::string::npos);

  auto missing = OpenStoreSnapshot(TempPath("never_written.trial"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotCorruption, RejectsWrongVersionAndEndianness) {
  std::string path = TempPath("seg_version.trial");
  ASSERT_TRUE(SaveStoreSnapshot(SmallStore(), path).ok());
  std::vector<uint8_t> pristine = ReadFileBytes(path);

  SegmentFileHeader h;
  std::memcpy(&h, pristine.data(), sizeof(h));
  {
    std::vector<uint8_t> bytes = pristine;
    SegmentFileHeader v = h;
    v.version = kSegmentVersion + 41;
    std::memcpy(bytes.data(), &v, sizeof(v));
    FixHeaderChecksum(&bytes);
    WriteFileBytes(path, bytes);
    auto r = OpenStoreSnapshot(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("unsupported snapshot version"),
              std::string::npos)
        << r.status().ToString();
  }
  {
    std::vector<uint8_t> bytes = pristine;
    SegmentFileHeader v = h;
    v.endian_tag = __builtin_bswap32(kSegmentEndianTag);
    std::memcpy(bytes.data(), &v, sizeof(v));
    FixHeaderChecksum(&bytes);
    WriteFileBytes(path, bytes);
    auto r = OpenStoreSnapshot(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("wrong-endian"), std::string::npos)
        << r.status().ToString();
  }
  {
    // A flipped header field without a re-seal: the checksum catches it.
    std::vector<uint8_t> bytes = pristine;
    bytes[offsetof(SegmentFileHeader, section_count)] ^= 0x01;
    WriteFileBytes(path, bytes);
    auto r = OpenStoreSnapshot(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("corrupt header"),
              std::string::npos);
  }
}

TEST(SnapshotCorruption, RejectsDamagedTocAndMetadataSections) {
  std::string path = TempPath("seg_toc.trial");
  ASSERT_TRUE(SaveStoreSnapshot(SmallStore(), path).ok());
  std::vector<uint8_t> pristine = ReadFileBytes(path);
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok());

  {
    // A bit flip inside the TOC.
    std::vector<uint8_t> bytes = pristine;
    bytes[sizeof(SegmentFileHeader) + 11] ^= 0x10;
    WriteFileBytes(path, bytes);
    auto r = OpenStoreSnapshot(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("table of contents"),
              std::string::npos)
        << r.status().ToString();
  }
  // A bit flip in each eagerly-verified metadata payload.
  for (uint32_t kind : {uint32_t{kSegDictOffsets}, uint32_t{kSegRelationDir},
                        uint32_t{kSegRho}}) {
    size_t i = reader.value().Find(kind);
    ASSERT_NE(i, SegmentReader::kNotFound);
    if (reader.value().Section(i).bytes == 0) continue;
    std::vector<uint8_t> bytes = pristine;
    bytes[reader.value().Section(i).offset] ^= 0x20;
    WriteFileBytes(path, bytes);
    auto r = OpenStoreSnapshot(path);
    ASSERT_FALSE(r.ok()) << "kind " << kind << " flip was not detected";
    EXPECT_NE(r.status().ToString().find("checksum mismatch"),
              std::string::npos)
        << r.status().ToString();
  }
}

TEST(SnapshotCorruption, TripleSegmentFlipFailsTheQueryNotTheOpen) {
  std::string path = TempPath("seg_triples.trial");
  ASSERT_TRUE(SaveStoreSnapshot(SmallStore(), path).ok());
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok());
  size_t i = reader.value().Find(kSegTriples, 0,
                                 static_cast<uint32_t>(IndexOrder::kSPO));
  ASSERT_NE(i, SegmentReader::kNotFound);
  ASSERT_GT(reader.value().Section(i).bytes, 0u);
  bytes[reader.value().Section(i).offset] ^= 0x40;
  WriteFileBytes(path, bytes);

  // Bulk payloads are lazy: the open itself succeeds...
  auto opened = OpenStoreSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened->SnapshotStatus().ok());
  // ...but every evaluator entry point reports the corruption instead
  // of returning an empty result.
  ExprPtr e = Expr::Rel("E");
  plan::PlanPtr p = plan::PlanExpr(e, *opened);
  auto r = plan::ExecutePlan(*p, *opened);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("checksum mismatch"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_FALSE(opened->SnapshotStatus().ok());
  auto r2 = MakeSmartEvaluator()->Eval(e, *opened);
  ASSERT_FALSE(r2.ok());

  // The full-verification open mode rejects the file up front.
  OpenSnapshotOptions verify;
  verify.verify_payload = true;
  auto strict = OpenStoreSnapshot(path, verify);
  ASSERT_FALSE(strict.ok());
}

TEST(SnapshotCorruption, DictionaryBytesFlipFailsStrictOpen) {
  std::string path = TempPath("seg_dict.trial");
  ASSERT_TRUE(SaveStoreSnapshot(SmallStore(), path).ok());
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok());
  size_t i = reader.value().Find(kSegDictBytes);
  ASSERT_NE(i, SegmentReader::kNotFound);
  ASSERT_GT(reader.value().Section(i).bytes, 0u);
  bytes[reader.value().Section(i).offset] ^= 0x04;
  WriteFileBytes(path, bytes);

  OpenSnapshotOptions verify;
  verify.verify_payload = true;
  auto strict = OpenStoreSnapshot(path, verify);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().ToString().find("checksum mismatch"),
            std::string::npos)
      << strict.status().ToString();
}

// ---- codec unit coverage ----------------------------------------------

TEST(TripleCodec, EncodeDecodeRoundTripAllOrders) {
  TripleStore store = ZipfStore(17);
  const TripleSet& rel = store.Relation(0);
  for (IndexOrder order :
       {IndexOrder::kSPO, IndexOrder::kPOS, IndexOrder::kOSP}) {
    TripleRange range = rel.Scan(order);
    std::vector<uint8_t> buf;
    EncodeTripleSegment(range, order, &buf);
    EXPECT_LT(buf.size(), range.size() * sizeof(Triple))
        << "no compression for " << IndexOrderName(order);
    std::vector<Triple> out;
    Status st = DecodeTripleSegment(buf.data(), buf.size(), range.size(),
                                    order, "test", &out);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_EQ(out.size(), range.size());
    EXPECT_TRUE(std::equal(out.begin(), out.end(), range.begin()));
  }
}

TEST(TripleCodec, DecodeRejectsTruncationAndTrailingBytes) {
  std::vector<Triple> triples = {{0, 0, 0}, {1, 2, 3}, {1, 2, 9}};
  TripleRange range{triples.data(), triples.data() + triples.size()};
  std::vector<uint8_t> buf;
  EncodeTripleSegment(range, IndexOrder::kSPO, &buf);
  std::vector<Triple> out;
  // Declared count larger than the stream: ends early.
  EXPECT_FALSE(DecodeTripleSegment(buf.data(), buf.size(), 4,
                                   IndexOrder::kSPO, "t", &out)
                   .ok());
  // Declared count smaller: trailing bytes.
  EXPECT_FALSE(DecodeTripleSegment(buf.data(), buf.size(), 2,
                                   IndexOrder::kSPO, "t", &out)
                   .ok());
  // Unsorted input (duplicate triple) is rejected by the decoder.
  std::vector<uint8_t> dup;
  std::vector<Triple> bad = {{1, 2, 3}, {1, 2, 3}};
  EncodeTripleSegment({bad.data(), bad.data() + 2}, IndexOrder::kSPO, &dup);
  EXPECT_FALSE(
      DecodeTripleSegment(dup.data(), dup.size(), 2, IndexOrder::kSPO, "t",
                          &out)
          .ok());
}

}  // namespace
}  // namespace trial
