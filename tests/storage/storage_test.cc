// Unit tests for the storage module: data values, triple sets, stores.

#include <gtest/gtest.h>

#include "rdf/fixtures.h"
#include "storage/data_value.h"
#include "storage/triple_set.h"
#include "storage/triple_store.h"
#include "util/interner.h"

namespace trial {
namespace {

TEST(DataValue, EqualityAcrossKinds) {
  EXPECT_EQ(DataValue::Null(), DataValue::Null());
  EXPECT_EQ(DataValue::Int(7), DataValue::Int(7));
  EXPECT_NE(DataValue::Int(7), DataValue::Int(8));
  EXPECT_NE(DataValue::Int(7), DataValue::Str("7"));
  EXPECT_EQ(DataValue::Str("a"), DataValue::Str("a"));
  DataValue t1 = DataValue::Tuple({DataValue::Int(1), DataValue::Null()});
  DataValue t2 = DataValue::Tuple({DataValue::Int(1), DataValue::Null()});
  DataValue t3 = DataValue::Tuple({DataValue::Int(1), DataValue::Int(2)});
  EXPECT_EQ(t1, t2);
  EXPECT_NE(t1, t3);
  EXPECT_EQ(t1.Hash(), t2.Hash());
}

TEST(DataValue, OrderingIsTotal) {
  std::vector<DataValue> vals = {
      DataValue::Str("b"), DataValue::Int(2), DataValue::Null(),
      DataValue::Tuple({DataValue::Int(1)}), DataValue::Int(1),
      DataValue::Str("a")};
  std::sort(vals.begin(), vals.end());
  EXPECT_TRUE(vals[0].is_null());
  EXPECT_EQ(vals[1], DataValue::Int(1));
  EXPECT_EQ(vals[3], DataValue::Str("a"));
  EXPECT_TRUE(vals[5].is_tuple());
}

TEST(DataValue, TupleComponentAccess) {
  DataValue t = DataValue::Tuple({DataValue::Int(1), DataValue::Str("x")});
  EXPECT_EQ(TupleComponent(t, 0), DataValue::Int(1));
  EXPECT_EQ(TupleComponent(t, 1), DataValue::Str("x"));
  EXPECT_TRUE(TupleComponent(t, 5).is_null());
  EXPECT_TRUE(TupleComponent(DataValue::Int(3), 0).is_null());
}

TEST(DataValue, ToStringRendering) {
  EXPECT_EQ(DataValue::Null().ToString(), "null");
  EXPECT_EQ(DataValue::Int(-3).ToString(), "-3");
  EXPECT_EQ(DataValue::Str("hi").ToString(), "\"hi\"");
  EXPECT_EQ(
      DataValue::Tuple({DataValue::Int(1), DataValue::Null()}).ToString(),
      "(1, null)");
}

TEST(TripleSet, InsertNormalizeDedup) {
  TripleSet s;
  s.Insert(1, 2, 3);
  s.Insert(1, 2, 3);
  s.Insert(0, 0, 0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(Triple{1, 2, 3}));
  EXPECT_FALSE(s.Contains(Triple{3, 2, 1}));
  // Sorted order.
  EXPECT_EQ(s.triples().front(), (Triple{0, 0, 0}));
}

TEST(TripleSet, InsertBatchMatchesPerTripleInserts) {
  TripleSet batched, single;
  std::vector<Triple> run1 = {{3, 3, 3}, {1, 1, 1}, {1, 1, 1}};
  std::vector<Triple> run2 = {{2, 2, 2}, {1, 1, 1}};
  for (const Triple& t : run1) single.Insert(t);
  for (const Triple& t : run2) single.Insert(t);
  batched.Reserve(run1.size() + run2.size());
  batched.InsertBatch(run1);
  batched.InsertBatch(run2);
  EXPECT_EQ(batched, single);
  EXPECT_EQ(batched.size(), 3u);

  // A batch staged after a read merges through the same normalize path.
  batched.InsertBatch({{0, 0, 0}, {2, 2, 2}});
  EXPECT_EQ(batched.size(), 4u);
  EXPECT_EQ(batched.triples().front(), (Triple{0, 0, 0}));
}

TEST(TripleStore, BulkAppendKeepsIndexCacheSemantics) {
  TripleStore store;
  RelId rel = store.AddRelation("E");
  for (ObjId i = 0; i < 4; ++i) store.InternObject("o" + std::to_string(i));
  store.BulkAppend(rel, {{0, 1, 2}, {0, 1, 2}, {2, 1, 3}});
  EXPECT_EQ(store.Relation(rel).size(), 2u);
  // Warm a non-base permutation, then mutate: the lookup must see the
  // appended triple (the cache cell detaches on mutation).
  EXPECT_EQ(store.Relation(rel).Lookup(2, 2).size(), 1u);
  store.BulkAppend(rel, {{1, 1, 2}});
  EXPECT_EQ(store.Relation(rel).Lookup(2, 2).size(), 2u);
  EXPECT_EQ(store.TotalTriples(), 3u);
}

TEST(TripleStore, MergeDictionaryRemapsAndExtendsRho) {
  TripleStore store;
  store.SetValue(store.InternObject("shared"), DataValue::Int(5));
  StringInterner shard;
  shard.Intern("new1");
  shard.Intern("shared");
  shard.Intern("new2");
  std::vector<ObjId> remap = store.MergeDictionary(shard);
  ASSERT_EQ(remap.size(), 3u);
  EXPECT_EQ(remap[1], store.FindObject("shared"));
  EXPECT_EQ(store.NumObjects(), 3u);
  EXPECT_EQ(store.Value(remap[1]), DataValue::Int(5));
  EXPECT_TRUE(store.Value(remap[2]).is_null());
}

TEST(TripleSet, SetAlgebra) {
  TripleSet a({{1, 1, 1}, {2, 2, 2}, {3, 3, 3}});
  TripleSet b({{2, 2, 2}, {4, 4, 4}});
  EXPECT_EQ(TripleSet::Union(a, b).size(), 4u);
  EXPECT_EQ(TripleSet::Difference(a, b).size(), 2u);
  EXPECT_EQ(TripleSet::Intersection(a, b).size(), 1u);
  EXPECT_EQ(TripleSet::Difference(a, a).size(), 0u);
}

TEST(TripleStore, ObjectsValuesRelations) {
  TripleStore store;
  ObjId a = store.InternObject("a");
  EXPECT_EQ(store.InternObject("a"), a);
  EXPECT_TRUE(store.Value(a).is_null());
  store.SetValue(a, DataValue::Int(9));
  EXPECT_EQ(store.Value(a), DataValue::Int(9));

  Triple t = store.Add("E", "a", "b", "c");
  EXPECT_EQ(t.s, a);
  EXPECT_EQ(store.TotalTriples(), 1u);
  EXPECT_NE(store.FindRelation("E"), nullptr);
  EXPECT_EQ(store.FindRelation("F"), nullptr);
  EXPECT_EQ(store.TripleToString(t), "(a, b, c)");

  ObjId b = store.FindObject("b");
  store.SetValue(b, DataValue::Int(9));
  EXPECT_TRUE(store.SameValue(a, b));
}

TEST(TripleStore, MultipleRelations) {
  TripleStore store;
  store.Add("E1", "x", "y", "z");
  store.Add("E2", "x", "y", "w");
  EXPECT_EQ(store.NumRelations(), 2u);
  EXPECT_EQ(store.TotalTriples(), 2u);
  EXPECT_EQ(store.RelationName(0), "E1");
}

TEST(Fixtures, MarioNetworkMatchesPaper) {
  TripleStore store = MarioSocialNetwork();
  EXPECT_EQ(store.TotalTriples(), 3u);
  ObjId mario = store.FindObject("o175");
  ASSERT_NE(mario, kInvalidIntern);
  const DataValue& v = store.Value(mario);
  ASSERT_TRUE(v.is_tuple());
  EXPECT_EQ(TupleComponent(v, 0), DataValue::Str("Mario"));
  EXPECT_EQ(TupleComponent(v, 2), DataValue::Int(23));
  EXPECT_TRUE(TupleComponent(v, 3).is_null());
  ObjId c163 = store.FindObject("c163");
  EXPECT_EQ(TupleComponent(store.Value(c163), 3), DataValue::Str("rival"));
}

}  // namespace
}  // namespace trial
