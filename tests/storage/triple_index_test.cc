// Unit and property tests for the permutation-index layer
// (storage/triple_index.h): planner coverage, agreement of Lookup /
// LookupPair / Scan with the sorted base vector, lazy build and
// invalidation, cache sharing across copies, stats, the merge-based
// Normalize, and the Zipf-skewed store generator that exercises skewed
// index selectivity.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/builder.h"
#include "core/eval.h"
#include "graph/generators.h"
#include "storage/triple_index.h"
#include "storage/triple_set.h"
#include "storage/triple_store.h"
#include "util/rng.h"

namespace trial {
namespace {

TripleSet RandomSet(Rng* rng, size_t n, ObjId universe) {
  TripleSet s;
  for (size_t i = 0; i < n; ++i) {
    s.Insert(static_cast<ObjId>(rng->Below(universe)),
             static_cast<ObjId>(rng->Below(universe)),
             static_cast<ObjId>(rng->Below(universe)));
  }
  return s;
}

std::vector<Triple> ScanFilter(const TripleSet& s, int col, ObjId v) {
  std::vector<Triple> out;
  for (const Triple& t : s) {
    if (t[col] == v) out.push_back(t);
  }
  return out;
}

TEST(PlanAccess, CoversEverySingleColumnAndPair) {
  EXPECT_EQ(PlanAccess(true, false, false).order, IndexOrder::kSPO);
  EXPECT_EQ(PlanAccess(false, true, false).order, IndexOrder::kPOS);
  EXPECT_EQ(PlanAccess(false, false, true).order, IndexOrder::kOSP);
  EXPECT_EQ(PlanAccess(true, true, false).order, IndexOrder::kSPO);
  EXPECT_EQ(PlanAccess(false, true, true).order, IndexOrder::kPOS);
  EXPECT_EQ(PlanAccess(true, false, true).order, IndexOrder::kOSP);
  // Every bound set is fully covered by the chosen order's prefix.
  for (int mask = 0; mask < 8; ++mask) {
    bool s = mask & 1, p = mask & 2, o = mask & 4;
    AccessPath path = PlanAccess(s, p, o);
    EXPECT_EQ(path.prefix, (s ? 1 : 0) + (p ? 1 : 0) + (o ? 1 : 0));
    // The prefix columns of the order are exactly the bound ones.
    bool bound[3] = {s, p, o};
    for (int k = 0; k < path.prefix; ++k) {
      EXPECT_TRUE(bound[IndexColumn(path.order, k)])
          << "mask=" << mask << " k=" << k;
    }
  }
}

TEST(TripleIndex, LookupAgreesWithLinearScan) {
  Rng rng(7);
  TripleSet s = RandomSet(&rng, 300, 12);
  for (int col = 0; col < 3; ++col) {
    for (ObjId v = 0; v < 13; ++v) {  // one past the universe: empty range
      std::vector<Triple> expect = ScanFilter(s, col, v);
      TripleRange got = s.Lookup(col, v);
      std::vector<Triple> got_v(got.begin(), got.end());
      std::sort(got_v.begin(), got_v.end());
      std::sort(expect.begin(), expect.end());
      EXPECT_EQ(got_v, expect) << "col=" << col << " v=" << v;
    }
  }
}

TEST(TripleIndex, LookupPairAgreesWithLinearScan) {
  Rng rng(11);
  TripleSet s = RandomSet(&rng, 400, 8);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      for (ObjId va = 0; va < 8; ++va) {
        for (ObjId vb = 0; vb < 8; ++vb) {
          std::vector<Triple> expect;
          for (const Triple& t : s) {
            if (t[a] == va && t[b] == vb) expect.push_back(t);
          }
          TripleRange got = s.LookupPair(a, va, b, vb);
          std::vector<Triple> got_v(got.begin(), got.end());
          std::sort(got_v.begin(), got_v.end());
          std::sort(expect.begin(), expect.end());
          EXPECT_EQ(got_v, expect)
              << "cols " << a << "," << b << " vals " << va << "," << vb;
        }
      }
    }
  }
}

TEST(TripleIndex, LookupPairSameColumn) {
  TripleSet s({{1, 2, 3}, {1, 5, 6}});
  EXPECT_EQ(s.LookupPair(0, 1, 0, 1).size(), 2u);
  EXPECT_TRUE(s.LookupPair(0, 1, 0, 2).empty());
}

TEST(TripleIndex, ScanIsSortedPermutationOfBase) {
  Rng rng(13);
  TripleSet s = RandomSet(&rng, 250, 9);
  std::vector<Triple> base = s.triples();
  for (IndexOrder ord :
       {IndexOrder::kSPO, IndexOrder::kPOS, IndexOrder::kOSP}) {
    TripleRange r = s.Scan(ord);
    ASSERT_EQ(r.size(), base.size());
    for (size_t i = 1; i < r.size(); ++i) {
      EXPECT_FALSE(IndexLess(ord, r.begin()[i], r.begin()[i - 1]))
          << IndexOrderName(ord) << " out of order at " << i;
    }
    std::vector<Triple> copy(r.begin(), r.end());
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, base) << IndexOrderName(ord) << " is not a permutation";
  }
}

TEST(TripleIndex, LazyBuildAndInvalidationOnInsert) {
  TripleSet s;
  s.Insert(1, 2, 3);
  // Pending staged inserts: nothing is ready.
  EXPECT_FALSE(s.IndexReady(IndexOrder::kSPO));
  EXPECT_EQ(s.size(), 1u);  // normalizes
  EXPECT_TRUE(s.IndexReady(IndexOrder::kSPO));   // the base vector itself
  EXPECT_FALSE(s.IndexReady(IndexOrder::kPOS));  // lazy: not yet built
  EXPECT_EQ(s.Lookup(1, 2).size(), 1u);          // builds POS
  EXPECT_TRUE(s.IndexReady(IndexOrder::kPOS));
  EXPECT_FALSE(s.IndexReady(IndexOrder::kOSP));

  s.Insert(4, 2, 6);  // invalidates
  EXPECT_FALSE(s.IndexReady(IndexOrder::kPOS));
  EXPECT_EQ(s.Lookup(1, 2).size(), 2u);  // rebuilt over the merged body
  EXPECT_TRUE(s.IndexReady(IndexOrder::kPOS));
}

TEST(TripleIndex, CopiesShareTheCacheUntilMutation) {
  Rng rng(17);
  TripleSet original = RandomSet(&rng, 100, 6);
  original.triples();  // normalize
  TripleSet copy = original;
  // Building through the copy warms the original (shared cell) ...
  copy.Lookup(2, 3);
  EXPECT_TRUE(original.IndexReady(IndexOrder::kOSP));
  // ... and mutating the copy detaches it without touching the original.
  copy.Insert(99, 99, 99);
  EXPECT_FALSE(copy.IndexReady(IndexOrder::kOSP));  // staged insert pending
  EXPECT_EQ(copy.Lookup(2, 99).size(), 1u);  // detaches, rebuilds over merge
  EXPECT_TRUE(original.IndexReady(IndexOrder::kOSP));
  EXPECT_TRUE(original.Lookup(2, 99).empty());
}

TEST(TripleIndex, StatsCountDistinctValues) {
  TripleSet s({{0, 5, 1}, {0, 5, 2}, {1, 5, 2}, {2, 6, 2}});
  const TripleSetStats& st = s.Stats();
  EXPECT_EQ(st.num_triples, 4u);
  EXPECT_EQ(st.distinct[0], 3u);  // s: 0, 1, 2
  EXPECT_EQ(st.distinct[1], 2u);  // p: 5, 6
  EXPECT_EQ(st.distinct[2], 2u);  // o: 1, 2
  EXPECT_DOUBLE_EQ(st.ExpectedMatches(1), 2.0);
}

TEST(TripleIndex, StoreExposesRelationStats) {
  TripleStore store;
  store.Add("E", "a", "p", "b");
  store.Add("E", "a", "p", "c");
  const TripleSetStats& st = store.RelationStats(0);
  EXPECT_EQ(st.num_triples, 2u);
  EXPECT_EQ(st.distinct[0], 1u);
  EXPECT_EQ(st.distinct[2], 2u);
}

// The merge-based Normalize: interleaved insert/read rounds agree with a
// std::set model (this is the semi-naive fixpoint access pattern).
TEST(TripleSetNormalize, InterleavedBatchesMatchSetModel) {
  Rng rng(23);
  TripleSet s;
  std::set<Triple> model;
  for (int round = 0; round < 20; ++round) {
    size_t batch = rng.Below(40);
    for (size_t i = 0; i < batch; ++i) {
      Triple t{static_cast<ObjId>(rng.Below(10)),
               static_cast<ObjId>(rng.Below(10)),
               static_cast<ObjId>(rng.Below(10))};
      s.Insert(t);
      model.insert(t);
    }
    ASSERT_EQ(s.size(), model.size()) << "round " << round;
    std::vector<Triple> expect(model.begin(), model.end());
    EXPECT_EQ(s.triples(), expect) << "round " << round;
  }
}

TEST(ZipfStores, DeterministicInSeed) {
  RandomStoreOptions opts;
  opts.num_objects = 50;
  opts.num_triples = 500;
  opts.zipf_p = 1.2;
  opts.zipf_o = 0.8;
  opts.seed = 5;
  TripleStore a = RandomTripleStore(opts);
  TripleStore b = RandomTripleStore(opts);
  ASSERT_EQ(a.TotalTriples(), b.TotalTriples());
  EXPECT_EQ(*a.FindRelation("E"), *b.FindRelation("E"));
}

TEST(ZipfStores, SkewConcentratesOnLowRanks) {
  RandomStoreOptions opts;
  opts.num_objects = 64;
  opts.num_triples = 2000;
  opts.zipf_p = 1.5;
  opts.seed = 9;
  TripleStore store = RandomTripleStore(opts);
  const TripleSet& rel = *store.FindRelation("E");
  ObjId hottest = store.FindObject("o0");
  ASSERT_NE(hottest, kInvalidIntern);
  size_t hot = rel.Lookup(1, hottest).size();
  // Uniform would give ~2000/64 ≈ 31 (duplicates collapse a little);
  // Zipf(1.5) gives rank 0 about 1/ζ(1.5)·2000 ≈ 40% of all draws.
  EXPECT_GT(hot, 200u);
  const TripleSetStats& st = rel.Stats();
  EXPECT_LT(st.distinct[1], 64u);  // deep ranks are rarely drawn at all
  EXPECT_GT(st.distinct[0], 50u);  // subjects stayed uniform
}

// ---- partition API (the parallel kernels' input splitting) ------------

TEST(Partitions, SlicesConcatenateToScanInOrder) {
  Rng rng(77);
  TripleSet s = RandomSet(&rng, 500, 40);
  for (IndexOrder order :
       {IndexOrder::kSPO, IndexOrder::kPOS, IndexOrder::kOSP}) {
    TripleRange full = s.Scan(order);
    for (size_t parts : std::vector<size_t>{1, 2, 3, 7, 1000}) {
      std::vector<TripleRange> ps = s.Partitions(order, parts);
      EXPECT_LE(ps.size(), std::max<size_t>(parts, 1));
      const Triple* expect = full.begin();
      for (const TripleRange& r : ps) {
        EXPECT_EQ(r.begin(), expect);  // contiguous, in scan order
        expect = r.end();
      }
      EXPECT_EQ(expect, full.end());
    }
  }
}

TEST(Partitions, PartitionAwareScanMatchesPartitions) {
  Rng rng(78);
  TripleSet s = RandomSet(&rng, 300, 30);
  for (IndexOrder order :
       {IndexOrder::kSPO, IndexOrder::kPOS, IndexOrder::kOSP}) {
    const size_t parts = 5;
    TripleRange full = s.Scan(order);
    const Triple* expect = full.begin();
    for (size_t p = 0; p < parts; ++p) {
      TripleRange r = s.Scan(order, p, parts);
      EXPECT_EQ(r.begin(), expect);
      expect = r.end();
    }
    EXPECT_EQ(expect, full.end());
    EXPECT_TRUE(s.Scan(order, parts, parts).empty());  // part out of range
  }
}

TEST(Partitions, MaterializeBuildsTheOrder) {
  Rng rng(79);
  TripleSet s = RandomSet(&rng, 50, 10);
  EXPECT_FALSE(s.IndexReady(IndexOrder::kPOS));
  s.Materialize(IndexOrder::kPOS);
  EXPECT_TRUE(s.IndexReady(IndexOrder::kPOS));
  s.Insert(1, 2, 3);  // staged insert invalidates readiness
  EXPECT_FALSE(s.IndexReady(IndexOrder::kPOS));
}

// Cross-check: the index-routed Smart engine agrees with Naive on
// selective constant selections and joins over a skewed store — the
// workload where index ranges differ most between hot and cold keys.
TEST(ZipfStores, EnginesAgreeOnSelectiveQueries) {
  RandomStoreOptions opts;
  opts.num_objects = 40;
  opts.num_triples = 400;
  opts.zipf_p = 1.3;
  opts.zipf_o = 1.0;
  opts.seed = 31;
  TripleStore store = RandomTripleStore(opts);
  auto naive = MakeNaiveEvaluator();
  auto smart = MakeSmartEvaluator();
  ObjId hot = store.FindObject("o0");
  ObjId cold = store.FindObject("o39");
  ASSERT_NE(hot, kInvalidIntern);
  ASSERT_NE(cold, kInvalidIntern);
  for (ObjId c : {hot, cold}) {
    for (Pos pos : {Pos::P1, Pos::P2, Pos::P3}) {
      // σ_{pos=c}(E) and σ_{pos=c}(E) ⋈_{3=1'} E.
      ExprPtr sel = Expr::Select(Expr::Rel("E"), Where({EqConst(pos, c)}));
      ExprPtr join =
          Expr::Join(sel, Expr::Rel("E"),
                     Spec(Pos::P1, Pos::P2, Pos::P3p, {Eq(Pos::P3, Pos::P1p)}));
      for (const ExprPtr& e : {sel, join}) {
        auto rn = naive->Eval(e, store);
        auto rs = smart->Eval(e, store);
        ASSERT_TRUE(rn.ok()) << rn.status().ToString();
        ASSERT_TRUE(rs.ok()) << rs.status().ToString();
        EXPECT_EQ(*rn, *rs) << e->ToString();
      }
    }
  }
}

}  // namespace
}  // namespace trial
