// The process metrics registry: named instrument identity, counter and
// gauge semantics, the log2 histogram bucketing, the global enable
// flag, snapshot/JSON rendering, and thread-safety under a concurrent
// hammer (the TSan configuration runs this suite).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace trial {
namespace {

// The registry is process-global and other suites may have touched it;
// every test uses its own instrument names and asserts deltas.

const MetricsSnapshot::HistogramValue* FindHisto(const MetricsSnapshot& snap,
                                                 const std::string& name) {
  for (const auto& e : snap.histograms) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c1 = reg.GetCounter("test.identity.counter");
  Counter* c2 = reg.GetCounter("test.identity.counter");
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(reg.GetGauge("test.identity.gauge"),
            reg.GetGauge("test.identity.gauge"));
  EXPECT_EQ(reg.GetHistogram("test.identity.histo"),
            reg.GetHistogram("test.identity.histo"));
  // Distinct names are distinct instruments.
  EXPECT_NE(c1, reg.GetCounter("test.identity.counter2"));
}

TEST(MetricsRegistry, CounterAndGaugeBasics) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.basics.counter");
  uint64_t before = c->value();
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), before + 42);

  Gauge* g = reg.GetGauge("test.basics.gauge");
  g->Set(17);
  EXPECT_EQ(g->value(), 17);
  g->Add(-20);
  EXPECT_EQ(g->value(), -3);
}

TEST(MetricsHistogram, Log2BucketBoundaries) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("test.buckets.histo");
  // 0 and 1 land in the first bucket (upper bound 1); 2 and 3 in
  // [2,4); 4 in [4,8); a huge value clamps into the top bucket.
  h->Observe(0);
  h->Observe(1);
  h->Observe(2);
  h->Observe(3);
  h->Observe(4);
  h->Observe(UINT64_MAX);

  MetricsSnapshot snap = reg.Snapshot();
  const MetricsSnapshot::HistogramValue* found =
      FindHisto(snap, "test.buckets.histo");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count, 6u);
  EXPECT_EQ(found->min, 0u);
  EXPECT_EQ(found->max, UINT64_MAX);
  EXPECT_EQ(found->sum, uint64_t{10} + UINT64_MAX);  // wraps, and that's fine

  uint64_t total = 0;
  uint64_t at_upper_1 = 0, at_upper_4 = 0, at_upper_8 = 0, at_top = 0;
  for (const auto& b : found->buckets) {
    total += b.second;
    if (b.first == 1) at_upper_1 = b.second;
    if (b.first == 4) at_upper_4 = b.second;
    if (b.first == 8) at_upper_8 = b.second;
    if (b.first == UINT64_MAX) at_top = b.second;
  }
  EXPECT_EQ(total, found->count) << "buckets must sum to the count";
  EXPECT_EQ(at_upper_1, 2u);  // 0, 1
  EXPECT_EQ(at_upper_4, 2u);  // 2, 3
  EXPECT_EQ(at_upper_8, 1u);  // 4
  EXPECT_EQ(at_top, 1u);      // the clamped UINT64_MAX
}

TEST(MetricsFlag, SetMetricsEnabledIsReadBack) {
  bool was = MetricsEnabled();
  SetMetricsEnabled(true);
  EXPECT_TRUE(MetricsEnabled());
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
  SetMetricsEnabled(was);
  // The instruments themselves always record; the flag only gates the
  // instrumentation sites (callers check it before reading clocks).
  Counter* c = MetricsRegistry::Global().GetCounter("test.flag.counter");
  uint64_t before = c->value();
  c->Increment();
  EXPECT_EQ(c->value(), before + 1);
}

TEST(MetricsRender, JsonContainsRegisteredInstruments) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.render.counter")->Add(7);
  reg.GetGauge("test.render.gauge")->Set(5);
  reg.GetHistogram("test.render.histo")->Observe(100);
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.render.counter\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.render.gauge\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.render.histo\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\""), std::string::npos) << json;
}

TEST(MetricsTimer, ScopedTimerObservesOnlyWhenEnabledAtConstruction) {
  bool was = MetricsEnabled();
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.timer.histo");
  SetMetricsEnabled(false);
  uint64_t before = h->count();
  { ScopedTimer t(h); }
  EXPECT_EQ(h->count(), before);
  SetMetricsEnabled(true);
  { ScopedTimer t(h); }
  EXPECT_EQ(h->count(), before + 1);
  SetMetricsEnabled(was);
}

TEST(MetricsClock, MonotonicNanosNeverGoesBackwards) {
  uint64_t prev = MonotonicNanos();
  for (int i = 0; i < 1000; ++i) {
    uint64_t now = MonotonicNanos();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

// Concurrency: registrations, counter bumps and histogram observations
// race across threads; totals must come out exact and TSan-clean.
TEST(MetricsThreads, ConcurrentRegisterAndRecordIsExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  MetricsRegistry& reg = MetricsRegistry::Global();
  uint64_t c_before = reg.GetCounter("test.mt.counter")->value();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Every thread re-resolves by name (exercising the registry
      // lock) and records on shared and per-thread instruments.
      Counter* c = reg.GetCounter("test.mt.counter");
      Histogram* h = reg.GetHistogram("test.mt.histo");
      Counter* own = reg.GetCounter("test.mt.own." + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(static_cast<uint64_t>(i));
        own->Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("test.mt.counter")->value(),
            c_before + uint64_t{kThreads} * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.GetCounter("test.mt.own." + std::to_string(t))->value(),
              uint64_t{kPerThread});
  }
  MetricsSnapshot snap = reg.Snapshot();
  const MetricsSnapshot::HistogramValue* found =
      FindHisto(snap, "test.mt.histo");
  ASSERT_NE(found, nullptr);
  EXPECT_GE(found->count, uint64_t{kThreads} * kPerThread);
  uint64_t total = 0;
  for (const auto& b : found->buckets) total += b.second;
  EXPECT_EQ(total, found->count);
}

}  // namespace
}  // namespace trial
