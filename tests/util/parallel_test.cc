// The parallel execution layer: deterministic chunking, the global
// thread pool, and the in-order collect helper the query kernels build
// on (see src/util/parallel.h for the determinism contract).

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace trial {
namespace {

TEST(SplitEvenTest, CoversRangeContiguouslyAndEvenly) {
  for (size_t n : std::vector<size_t>{0, 1, 2, 7, 100, 1001}) {
    for (size_t chunks : std::vector<size_t>{1, 2, 3, 8, 1000}) {
      std::vector<ChunkRange> cs = SplitEven(n, chunks);
      ASSERT_FALSE(cs.empty());
      EXPECT_LE(cs.size(), std::max<size_t>(chunks, 1));
      EXPECT_EQ(cs.front().begin, 0u);
      EXPECT_EQ(cs.back().end, n);
      size_t lo = n, hi = 0;
      for (size_t i = 0; i < cs.size(); ++i) {
        if (i > 0) {
          EXPECT_EQ(cs[i].begin, cs[i - 1].end);
        }
        lo = std::min(lo, cs[i].size());
        hi = std::max(hi, cs[i].size());
      }
      if (n > 0) {
        EXPECT_GE(lo, 1u);  // no empty chunks on non-empty input
        EXPECT_LE(hi - lo, 1u);
      }
    }
  }
}

TEST(SplitEvenTest, DependsOnlyOnArguments) {
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<ChunkRange> a = SplitEven(12345, 7);
    std::vector<ChunkRange> b = SplitEven(12345, 7);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].begin, b[i].begin);
      EXPECT_EQ(a[i].end, b[i].end);
    }
  }
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  for (size_t threads : std::vector<size_t>{1, 2, 4, 8}) {
    std::vector<int> hits(257, 0);
    // Distinct tasks write distinct elements: no data race, and a task
    // run twice (or never) shows up as hits[t] != 1.
    ParallelFor(hits.size(), threads, [&](size_t t) { ++hits[t]; });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, NestedRunExecutesInlineWithoutDeadlock) {
  std::atomic<int> count{0};
  ParallelFor(4, 4, [&](size_t) {
    ParallelFor(8, 4, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, GlobalPoolIsReusableAcrossRuns) {
  std::atomic<size_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    ParallelFor(16, 4, [&](size_t t) { sum.fetch_add(t); });
  }
  EXPECT_EQ(sum.load(), 50u * (15 * 16 / 2));
}

TEST(ParallelChunkedCollectTest, MergeOrderIsThreadCountInvariant) {
  const size_t n = 10007;
  auto body = [](size_t, size_t begin, size_t end, std::vector<int>* out) {
    for (size_t i = begin; i < end; ++i) {
      out->push_back(static_cast<int>(i * 3));
    }
  };
  std::vector<int> serial = ParallelChunkedCollect<int>(n, 1, body);
  ASSERT_EQ(serial.size(), n);
  EXPECT_EQ(serial[5], 15);
  for (size_t threads : std::vector<size_t>{2, 4, 16}) {
    EXPECT_EQ(ParallelChunkedCollect<int>(n, threads, body), serial)
        << "threads=" << threads;
  }
}

TEST(ExecOptionsTest, DefaultsAreSerial) {
  ExecOptions opts;
  EXPECT_EQ(opts.EffectiveThreads(), 1u);
  EXPECT_FALSE(opts.ShouldParallelize(1u << 20));
}

TEST(ExecOptionsTest, ThresholdGatesParallelism) {
  ExecOptions opts;
  opts.num_threads = 4;
  opts.min_parallel_items = 100;
  EXPECT_TRUE(opts.ShouldParallelize(100));
  EXPECT_FALSE(opts.ShouldParallelize(99));
  opts.num_threads = 0;  // hardware concurrency
  EXPECT_GE(opts.EffectiveThreads(), 1u);
}

}  // namespace
}  // namespace trial
