// Unit tests for the util module: Status/Result, interner, bit
// containers, RNG determinism, power-law fitting.

#include <gtest/gtest.h>

#include "util/bit_matrix.h"
#include "util/fit.h"
#include "util/interner.h"
#include "util/rng.h"
#include "util/status.h"

namespace trial {
namespace {

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotFound("relation X");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "not-found: relation X");
}

TEST(Status, ResultPropagation) {
  auto fails = []() -> Result<int> {
    return Status::InvalidArgument("nope");
  };
  auto wraps = [&]() -> Result<int> {
    TRIAL_ASSIGN_OR_RETURN(int v, fails());
    return v + 1;
  };
  Result<int> r = wraps();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  Result<int> ok = 41;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok + 1, 42);
}

TEST(Interner, BidirectionalAndStable) {
  StringInterner in;
  InternId a = in.Intern("alpha");
  InternId b = in.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.Intern("alpha"), a);
  EXPECT_EQ(in.Get(a), "alpha");
  EXPECT_EQ(in.TryGet("beta"), b);
  EXPECT_EQ(in.TryGet("gamma"), kInvalidIntern);
  EXPECT_EQ(in.size(), 2u);
}

TEST(Interner, ReserveAndHeterogeneousLookup) {
  StringInterner in;
  in.Reserve(64);
  // string_view keys (incl. non-terminated substrings) never copy.
  std::string backing = "alpha/beta";
  std::string_view alpha = std::string_view(backing).substr(0, 5);
  std::string_view beta = std::string_view(backing).substr(6);
  InternId a = in.Intern(alpha);
  EXPECT_EQ(in.TryGet(alpha), a);
  EXPECT_EQ(in.TryGet(beta), kInvalidIntern);
  EXPECT_EQ(in.Intern("alpha"), a);
  // Returned views stay valid across growth.
  std::string_view got = in.Get(a);
  for (int i = 0; i < 1000; ++i) in.Intern("filler" + std::to_string(i));
  EXPECT_EQ(got, "alpha");
  EXPECT_EQ(in.Get(a), "alpha");
}

TEST(Interner, CopiesReKeyTheirIndex) {
  StringInterner a;
  InternId x = a.Intern("x");
  StringInterner b = a;
  b.Intern("y");
  a = b;  // copy-assign back
  StringInterner c(std::move(b));
  // Every copy resolves lookups through its own storage.
  EXPECT_EQ(a.TryGet("x"), x);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(c.TryGet("y"), c.Intern("y"));
  EXPECT_EQ(c.Get(x), "x");
}

TEST(Interner, MergeFromRemapsSharedAndNewStrings) {
  StringInterner global, shard;
  InternId g0 = global.Intern("x");
  global.Intern("y");
  shard.Intern("z");
  shard.Intern("x");
  std::vector<InternId> remap = global.MergeFrom(shard);
  ASSERT_EQ(remap.size(), 2u);
  EXPECT_EQ(remap[0], global.TryGet("z"));
  EXPECT_EQ(remap[1], g0);
  EXPECT_EQ(global.size(), 3u);
  // Merging an empty dictionary is a no-op.
  EXPECT_TRUE(global.MergeFrom(StringInterner{}).empty());
}

TEST(BitMatrix, TransitiveClosure) {
  BitMatrix m(5);
  m.Set(0, 1);
  m.Set(1, 2);
  m.Set(3, 4);
  m.TransitiveClosureInPlace();
  EXPECT_TRUE(m.Get(0, 2));
  EXPECT_TRUE(m.Get(0, 0));  // reflexive
  EXPECT_FALSE(m.Get(2, 0));
  EXPECT_FALSE(m.Get(0, 4));
  EXPECT_TRUE(m.Get(3, 4));
}

TEST(BitTensor3, SetOperations) {
  BitTensor3 a(8), b(8);
  a.Set(1, 2, 3);
  a.Set(4, 5, 6);
  b.Set(4, 5, 6);
  b.Set(7, 0, 1);
  BitTensor3 u = a;
  EXPECT_TRUE(u.OrInPlace(b));
  EXPECT_EQ(u.Count(), 3u);
  BitTensor3 d = a;
  d.SubtractInPlace(b);
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.Get(1, 2, 3));
  BitTensor3 i = a;
  i.AndInPlace(b);
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Get(4, 5, 6));
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(c.Below(10), 10u);
    int64_t r = c.Range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
    double u = c.Unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Fit, RecoversKnownExponents) {
  std::vector<double> x = {100, 200, 400, 800, 1600};
  std::vector<double> quad, lin;
  for (double v : x) {
    quad.push_back(3e-6 * v * v);
    lin.push_back(2e-4 * v);
  }
  PowerFit fq = FitPowerLaw(x, quad);
  PowerFit fl = FitPowerLaw(x, lin);
  EXPECT_NEAR(fq.exponent, 2.0, 1e-6);
  EXPECT_NEAR(fl.exponent, 1.0, 1e-6);
  EXPECT_GT(fq.r2, 0.999);
}

TEST(Fit, HandlesDegenerateInput) {
  EXPECT_EQ(FitPowerLaw({}, {}).exponent, 0.0);
  EXPECT_EQ(FitPowerLaw({1}, {2}).exponent, 0.0);
  EXPECT_EQ(FitPowerLaw({0, -1}, {1, 1}).exponent, 0.0);  // skipped points
}

}  // namespace
}  // namespace trial
